"""Declarative, JSON-serialisable run descriptions.

A :class:`SuiteSpec` names *what* to run — solver, scale, platform subset,
matrix subset — and a :class:`RunRequest` is its per-matrix unit of work.
Both are frozen dataclasses of primitives with lossless
``to_json``/``from_json`` round-trips, so a run description can cross a
process or host boundary as data: the suite runner's process-pool payload
*is* a :class:`RunRequest`, and a future multi-host runner ships the same
object over the wire.  Runtime concerns (worker counts, store paths) stay
out of these objects — that is :class:`repro.api.config.RunConfig`'s job,
because the right store path on one host is the wrong one on another.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.api.config import (
    SCALES,
    check_criterion as _check_criterion,
    parse_payload,
    tag_payload,
)
from repro.solvers.base import ConvergenceCriterion

__all__ = ["SuiteSpec", "RunRequest"]

_JSON_VERSION = 1


def _check_scale(scale: Optional[str], required: bool) -> None:
    if scale is None:
        if required:
            raise ValueError("scale must be a concrete scale name")
        return
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def _as_tuple(value, kind) -> Optional[tuple]:
    """Normalise an optional name/id selection to a non-empty tuple.

    Shared with :mod:`repro.api.sweep` (its solver/baseline/sid axes carry
    the same contract).
    """
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        raise ValueError(
            f"expected a sequence of values, got the bare string {value!r} "
            f"(did you mean [{value!r}]?)")
    out = tuple(kind(v) for v in value)
    if not out:
        raise ValueError("platform/sid subsets must be non-empty (use None "
                         "for the default full set)")
    return out


def _json_body(obj, type_name: str) -> Dict[str, Any]:
    return tag_payload(asdict(obj), type_name, _JSON_VERSION)


def _json_parse(data: Dict[str, Any], type_name: str) -> Dict[str, Any]:
    return parse_payload(data, type_name, _JSON_VERSION)


@dataclass(frozen=True)
class SuiteSpec:
    """A whole-suite sweep, declaratively.

    ``platforms``/``sids`` of ``None`` mean the defaults (the paper's
    four-platform grid over all 12 matrices); ``scale`` of ``None`` defers
    to the active :class:`RunConfig`.  Execute with
    :func:`repro.experiments.common.run_spec`.
    """

    solver: str = "cg"
    scale: Optional[str] = None
    platforms: Optional[Tuple[str, ...]] = None
    sids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.solver:
            raise ValueError("solver must be non-empty")
        _check_scale(self.scale, required=False)
        object.__setattr__(self, "platforms",
                           _as_tuple(self.platforms, str))
        object.__setattr__(self, "sids", _as_tuple(self.sids, int))

    def request(self, sid: int, scale: str,
                platforms: Optional[Tuple[str, ...]] = None) -> "RunRequest":
        """The per-matrix work unit for ``sid`` at a resolved ``scale``."""
        return RunRequest(sid=sid, solver=self.solver, scale=scale,
                          platforms=platforms if platforms is not None
                          else self.platforms)

    def replace(self, **changes: Any) -> "SuiteSpec":
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return _json_body(self, "SuiteSpec")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SuiteSpec":
        return cls(**_json_parse(data, "SuiteSpec"))

    @classmethod
    def from_json(cls, text: str) -> "SuiteSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class RunRequest:
    """One matrix run: the picklable/serialisable unit of distribution.

    Unlike :class:`SuiteSpec`, the scale is concrete (a request must mean
    the same work on every host) and the sid is singular.  This object is
    exactly what crosses the process-pool pickle boundary, and the seam a
    multi-host runner would ship.

    ``criterion`` pins the convergence criterion the solve must use;
    ``None`` defers to the executing process's active config.  Suite and
    sweep runners always stamp the resolved criterion in, so a request
    means the same work in a worker process whose config diverged from the
    parent's (workers inherit their environment at fork time).
    """

    sid: int
    solver: str
    scale: str
    platforms: Optional[Tuple[str, ...]] = None
    criterion: Optional[ConvergenceCriterion] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sid", int(self.sid))
        if not self.solver:
            raise ValueError("solver must be non-empty")
        _check_scale(self.scale, required=True)
        object.__setattr__(self, "platforms",
                           _as_tuple(self.platforms, str))
        object.__setattr__(self, "criterion",
                           _check_criterion(self.criterion))

    def replace(self, **changes: Any) -> "RunRequest":
        return replace(self, **changes)

    def key(self) -> str:
        """Canonical identity string: the sorted-key JSON body.

        Equal requests produce equal keys in every process (tuples
        serialise as lists, keys sort), so the key is what failure records
        and the sweep journal index by across crash/resume boundaries.
        """
        return self.to_json()

    def to_dict(self) -> Dict[str, Any]:
        return _json_body(self, "RunRequest")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRequest":
        return cls(**_json_parse(data, "RunRequest"))

    @classmethod
    def from_json(cls, text: str) -> "RunRequest":
        return cls.from_dict(json.loads(text))
