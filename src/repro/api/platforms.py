"""Builtin platform registrations (the Fig. 8 grid plus extra scenarios).

The four paper platforms register here exactly as ``run_matrix`` used to
hardcode them — same operator sources, same timing models, bit-identical
results — plus two scenario platforms the registry gives us for free:

* ``noisy``      — :class:`NoisyReFloatOperator` with the default RTN
                   deviation (Section VI-D, error correction off), charged
                   with ReFloat timing;
* ``truncated``  — :class:`TruncatedOperator` (the Table I naive-truncation
                   baseline at fp64-with-half-the-fraction), charged with
                   the [32] accelerator timing.

:func:`noisy_platform_spec` / :func:`truncated_platform_spec` build further
variants (a sigma sweep, other bit budgets) for user registration.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import (
    PLATFORM_REGISTRY,
    PlatformContext,
    PlatformSpec,
    register_platform,
)
from repro.formats.feinberg import FeinbergSpec
from repro.hardware.accelerator import MappingPlan, SolverTimingModel
from repro.hardware.gpu import GPUSolverModel
from repro.operators import NoisyReFloatOperator, TruncatedOperator

__all__ = [
    "DEFAULT_PLATFORMS",
    "DEFAULT_NOISE_SIGMA",
    "gpu_timing",
    "feinberg_timing",
    "refloat_timing",
    "feinberg_platform_spec",
    "noisy_platform_spec",
    "truncated_platform_spec",
]

#: The paper's evaluation grid (Fig. 8 legend) — the default sweep set.
#: The registry holds more platforms; these are the ones every experiment
#: runs unless a caller asks for a subset or a custom sweep.
DEFAULT_PLATFORMS = ("gpu", "feinberg", "feinberg_fc", "refloat")

#: RTN deviation of the builtin ``noisy`` platform (1%, the middle of the
#: paper's Fig. 10 sweep — well inside the converging regime).
DEFAULT_NOISE_SIGMA = 0.01


# ----------------------------------------------------------------------
# Timing models (identical to the pre-registry run_matrix accounting)


def gpu_timing(ctx: PlatformContext, iterations: int) -> float:
    """V100 roofline solve time for the context's solver shape."""
    model = GPUSolverModel(
        spmvs_per_iteration=ctx.spmvs_per_iteration,
        vector_kernels_per_iteration=ctx.gpu_vector_kernels_per_iteration)
    return model.solve_time_s(iterations, ctx.n_rows, ctx.nnz)


def feinberg_timing(ctx: PlatformContext, iterations: int) -> float:
    """[32] accelerator steady-state solve time (no one-time mapping write,
    matching the paper's speedup definition)."""
    plan = MappingPlan.for_feinberg(ctx.n_blocks)
    timing = SolverTimingModel(
        plan, spmvs_per_iteration=ctx.spmvs_per_iteration,
        vector_ops_per_iteration=ctx.vector_ops_per_iteration)
    return timing.solve_time_s(iterations, ctx.n_rows, include_setup=False)


def refloat_timing(ctx: PlatformContext, iterations: int, *,
                   include_setup: bool = False) -> float:
    """ReFloat accelerator solve time for the matrix's spec.

    Steady-state by default (the paper's speedup definition drops the
    one-time mapping write); ``include_setup=True`` charges it — the
    Fig. 10 accounting, exposed through ``noisy_platform_spec(setup=...)``.
    """
    plan = MappingPlan.for_refloat(ctx.n_blocks, ctx.spec)
    timing = SolverTimingModel(
        plan, spmvs_per_iteration=ctx.spmvs_per_iteration,
        vector_ops_per_iteration=ctx.vector_ops_per_iteration)
    return timing.solve_time_s(iterations, ctx.n_rows,
                               include_setup=include_setup)


# ----------------------------------------------------------------------
# The paper's four platforms


@register_platform(
    "gpu", timing=gpu_timing, always_timed=True,
    description="exact FP64 solve timed with the V100 roofline model")
def _gpu_operator(assets, ctx: PlatformContext):
    return assets.exact_op


@register_platform(
    "feinberg", timing=feinberg_timing,
    description="the [32] functional model (vector window flaw) with [32] "
                "accelerator timing")
def _feinberg_operator(assets, ctx: PlatformContext):
    return assets.feinberg_op(ctx.feinberg_spec)


#: Functionally-correct baseline: FP64 numerics (the GPU's results, reused
#: verbatim) charged with the [32] accelerator timing.
PLATFORM_REGISTRY.register(PlatformSpec(
    name="feinberg_fc", operator=None, results_from="gpu",
    timing=feinberg_timing, always_timed=True,
    description="FP64 iterations charged with the [32] accelerator timing"))


@register_platform(
    "refloat", timing=refloat_timing,
    description="ReFloat operator, its own iterations, ReFloat timing")
def _refloat_operator(assets, ctx: PlatformContext):
    return assets.refloat_op


# ----------------------------------------------------------------------
# Scenario platforms (free with the registry) and their spec factories


def noisy_platform_spec(name: str, sigma: float,
                        fresh_per_apply: bool = True,
                        seed: Optional[int] = None,
                        include_setup: bool = False,
                        description: str = "") -> PlatformSpec:
    """A ReFloat platform with multiplicative RTN noise of ``sigma``.

    The RNG seed defaults to the matrix sid, so sweeps are deterministic
    per matrix and a serialised run request reproduces bit-identically.
    ``include_setup`` charges the one-time mapping write in the timing
    model (the Fig. 10 accounting; steady-state otherwise).  Register the
    result to sweep it::

        PLATFORM_REGISTRY.register(noisy_platform_spec("noisy_5pct", 0.05))
    """

    def factory(assets, ctx: PlatformContext):
        return NoisyReFloatOperator(
            None, ctx.spec, sigma=sigma,
            seed=ctx.sid if seed is None else seed,
            fresh_per_apply=fresh_per_apply, blocked=assets.blocked)

    def timing(ctx: PlatformContext, iterations: int) -> float:
        return refloat_timing(ctx, iterations, include_setup=include_setup)

    return PlatformSpec(
        name=name, operator=factory, timing=timing,
        description=description or f"ReFloat with sigma={sigma} RTN noise")


def truncated_platform_spec(name: str, exp_bits: int, frac_bits: int,
                            description: str = "") -> PlatformSpec:
    """A naive bit-truncation platform (Table I semantics, [32] timing)."""

    def factory(assets, ctx: PlatformContext):
        return TruncatedOperator(assets.A, exp_bits=exp_bits,
                                 frac_bits=frac_bits)

    return PlatformSpec(
        name=name, operator=factory, timing=feinberg_timing,
        description=description or f"IEEE truncated to e={exp_bits} "
                                   f"f={frac_bits}, [32] timing")


def feinberg_platform_spec(name: str, exp_bits: int = 6, frac_bits: int = 52,
                           policy: str = "wrap",
                           description: str = "") -> PlatformSpec:
    """A [32]-model platform with an explicit ``(e, f)`` window spec.

    The builtin ``feinberg`` platform takes its spec from the run context
    (the paper's 6/52 window); this factory pins one, so ``(e, f)`` grids
    register as first-class platforms and sweep like any other.  The
    operator comes from the shared per-matrix cache (``assets.feinberg_op``
    memoises per spec), charged with the [32] accelerator timing.
    """
    fspec = FeinbergSpec(exp_bits=exp_bits, frac_bits=frac_bits,
                         policy=policy)

    def factory(assets, ctx: PlatformContext):
        return assets.feinberg_op(fspec)

    return PlatformSpec(
        name=name, operator=factory, timing=feinberg_timing,
        description=description or f"[32] model with e={exp_bits} "
                                   f"f={frac_bits} ({policy}), [32] timing")


PLATFORM_REGISTRY.register(
    noisy_platform_spec("noisy", DEFAULT_NOISE_SIGMA))
PLATFORM_REGISTRY.register(
    truncated_platform_spec("truncated", exp_bits=11, frac_bits=26))
