"""Builtin solver registrations.

Folds the old ``SOLVERS`` callable dict and the parallel ``_SOLVER_SHAPE``
per-iteration operation counts into single :class:`SolverSpec` entries
(Section VI-B: BiCGSTAB does two whole-matrix SpMVs per iteration; the GPU
roofline charges 5/10 vector kernels where the accelerators stream 6/12
n-length ops).  The batched solvers are first-class registrants too,
flagged ``multi_rhs`` — ``run_matrix`` refuses them with a named error, but
programmatic callers and the ``solve_many`` pipeline discover them through
the same registry.
"""

from __future__ import annotations

from repro.api.registry import register_solver
from repro.solvers import (
    bicgstab,
    block_bicgstab,
    block_cg,
    cg,
    solve_lockstep,
    solve_many,
)

__all__ = ["DEFAULT_SOLVERS"]

#: The paper's evaluation solvers (every experiment sweeps these two).
DEFAULT_SOLVERS = ("cg", "bicgstab")

register_solver(
    "cg", spmvs_per_iteration=1, vector_ops_per_iteration=6,
    gpu_vector_kernels_per_iteration=5,
    description="conjugate gradients (SPD systems)")(cg)

register_solver(
    "bicgstab", spmvs_per_iteration=2, vector_ops_per_iteration=12,
    gpu_vector_kernels_per_iteration=10,
    description="BiCGSTAB (general systems; two SpMVs per iteration)")(bicgstab)

register_solver(
    "block_cg", spmvs_per_iteration=1, vector_ops_per_iteration=6,
    gpu_vector_kernels_per_iteration=5, multi_rhs=True,
    description="O'Leary block CG: k RHS per iteration, one matmat/iter")(
        block_cg)

register_solver(
    "block_bicgstab", spmvs_per_iteration=2, vector_ops_per_iteration=12,
    gpu_vector_kernels_per_iteration=10, multi_rhs=True,
    description="batched BiCGSTAB: k RHS per iteration, two matmats/iter")(
        block_bicgstab)

register_solver(
    "solve_many", spmvs_per_iteration=1, vector_ops_per_iteration=6,
    gpu_vector_kernels_per_iteration=5, multi_rhs=True,
    description="per-column single-RHS solves sharing one operator")(
        solve_many)

register_solver(
    "lockstep", spmvs_per_iteration=1, vector_ops_per_iteration=6,
    gpu_vector_kernels_per_iteration=5, multi_rhs=True,
    description="gang-scheduled per-column solves: one matmat per round, "
                "bit-identical to solve_many (the service coalescer's "
                "batch path)")(solve_lockstep)
