"""Scenario sweeps: variant tokens, variant families, and :class:`SweepSpec`.

A *variant* is a platform built from a parameterised family — ``noisy`` at
a given RTN sigma, ``truncated``/``feinberg`` at a given ``(e, f)`` window.
Its name is a **variant token**, a canonical string of the form::

    family@key=value,key=value        e.g.  noisy@sigma=0.05
                                            truncated@e=8,f=23

The token is self-describing: any process that sees one can rebuild the
exact platform from the family registry and register it on demand
(:func:`ensure_variant`), so tokens travel through :class:`RunRequest`
platform lists, across the process-pool pickle boundary, and into worker
processes whose platform registries only hold the builtins.  Workers
rebuild from *their own* family registry: the suite runner's pool
identity includes this registry's generation, so on fork platforms a
pool predating a :func:`register_variant_family` call is recreated and
the forked workers inherit the new family; spawn-started workers
re-import :mod:`repro.api`, so a user family must be registered as an
import side effect of an importable module to be visible there.  Keys
are sorted in the canonical form; values are ints, floats (``repr``
spelling) or bare strings, so parse → format round-trips exactly and
equal parameters always produce equal tokens (cache keys, store extras
and JSON payloads rely on this).

:class:`SweepSpec` is the declarative grid: one variant family, a
cartesian parameter grid, plus solver/sid/scale axes and a baseline
platform set.  It is pure data with a lossless JSON round trip —
``repro.experiments.common.run_sweep`` executes it through the same
executor fan-out and asset store as ``run_suite``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.api.config import parse_payload, tag_payload
from repro.api.platforms import (
    feinberg_platform_spec,
    noisy_platform_spec,
    truncated_platform_spec,
)
from repro.api.registry import PLATFORM_REGISTRY, PlatformSpec, Registry
from repro.api.specs import _as_tuple, _check_scale

__all__ = [
    "VARIANT_FAMILIES",
    "VariantFamily",
    "SweepSpec",
    "ensure_variant",
    "ensure_variant_platforms",
    "is_variant_token",
    "parse_variant_token",
    "register_variant_family",
    "variant_token",
]

#: Separates the family name from the parameter list in a token.
TOKEN_SEP = "@"

_RESERVED = TOKEN_SEP + "=,"

_JSON_VERSION = 1


# ----------------------------------------------------------------------
# Token grammar


def _format_value(value: Any) -> str:
    """Canonical spelling of one parameter value (bools become 0/1)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if not value or any(ch in value for ch in _RESERVED):
            raise ValueError(
                f"string parameter values must be non-empty and free of "
                f"{_RESERVED!r}, got {value!r}")
        return value
    raise ValueError(
        f"variant parameters must be int/float/str, got "
        f"{type(value).__name__} ({value!r})")


def _parse_value(text: str) -> Any:
    """Inverse of :func:`_format_value`: int, then float, then bare string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def variant_token(family: str, params: Dict[str, Any]) -> str:
    """The canonical token for ``family`` at ``params`` (keys sorted)."""
    if not family or any(ch in family for ch in _RESERVED):
        raise ValueError(f"invalid variant family name {family!r}")
    if not params:
        raise ValueError(
            f"variant of family {family!r} needs at least one parameter")
    parts = []
    for key in sorted(params):
        if not key.isidentifier():
            raise ValueError(f"invalid parameter name {key!r}")
        parts.append(f"{key}={_format_value(params[key])}")
    return f"{family}{TOKEN_SEP}{','.join(parts)}"


def is_variant_token(name: object) -> bool:
    """True for strings shaped like ``family@params`` (not validated)."""
    return isinstance(name, str) and TOKEN_SEP in name


def parse_variant_token(token: str) -> Tuple[str, Dict[str, Any]]:
    """Split a token into ``(family, params)``; rejects non-canonical forms.

    Canonicality (sorted keys, shortest value spellings) is enforced by a
    format round trip — two spellings of the same variant must never
    coexist as distinct platform registrations or cache keys.
    """
    family, sep, body = token.partition(TOKEN_SEP)
    if not sep or not family or not body:
        raise ValueError(
            f"malformed variant token {token!r} (expected "
            f"'family{TOKEN_SEP}key=value,...')")
    params: Dict[str, Any] = {}
    for part in body.split(","):
        key, sep, text = part.partition("=")
        if not sep or not key or not text:
            raise ValueError(
                f"malformed parameter {part!r} in variant token {token!r}")
        if key in params:
            raise ValueError(
                f"duplicate parameter {key!r} in variant token {token!r}")
        params[key] = _parse_value(text)
    canonical = variant_token(family, params)
    if canonical != token:
        raise ValueError(
            f"non-canonical variant token {token!r}; use {canonical!r}")
    return family, params


# ----------------------------------------------------------------------
# Variant families


@dataclass(frozen=True)
class VariantFamily:
    """One parameterised platform family.

    ``build(name, **params)`` returns the :class:`PlatformSpec` for one
    point of the family's parameter space, already named with the variant
    token.  Builders must be deterministic in their parameters: every
    process that materialises the same token must produce the same
    platform.
    """

    name: str
    build: Callable[..., PlatformSpec]
    description: str = ""


#: Name → :class:`VariantFamily`.  Builtins (``noisy``, ``truncated``,
#: ``feinberg``) register below; user families via
#: :func:`register_variant_family`.
VARIANT_FAMILIES = Registry("variant family")


def register_variant_family(name: str, *, description: str = "",
                            replace: bool = False,
                            registry: Optional[Registry] = None,
                            ) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn(name, **params) -> PlatformSpec`` as a
    variant family builder (returned unchanged, so it stays callable)."""
    reg = VARIANT_FAMILIES if registry is None else registry

    def deco(fn: Callable) -> Callable:
        reg.register(VariantFamily(name=name, build=fn,
                                   description=description), replace=replace)
        return fn

    return deco


#: Token → family-registry version stamp at materialisation time (tokens
#: *this module* registered into the default PLATFORM_REGISTRY).  Lets
#: :func:`ensure_variant` notice a ``register_variant_family(replace=True)``
#: and rebuild the token from the new builder — serving the old platform
#: would silently diverge from worker processes that rebuild fresh — while
#: token-shaped names a user registered directly stay untouched.
_MATERIALISED: Dict[str, int] = {}


def ensure_variant(token: str, registry: Optional[Registry] = None,
                   ) -> PlatformSpec:
    """Materialise the platform a variant token names, registering it once.

    Already-registered tokens return their spec unchanged — unless this
    function materialised the token itself and its family has since been
    re-registered with ``replace=True``, in which case the token is
    rebuilt from the new builder (and its registry version bumps, so
    cached results keyed on it invalidate).  Unknown families raise the
    family registry's ``KeyError``; parameters the family's builder
    rejects raise ``ValueError`` naming both.  Concurrent materialisation
    of the same token is a benign race — builders are deterministic, so
    the loser adopts the winner's registration.
    """
    reg = PLATFORM_REGISTRY if registry is None else registry
    if token in reg:
        stamp = None if reg is not PLATFORM_REGISTRY else \
            _MATERIALISED.get(token)
        if stamp is None:
            return reg.get(token)  # user-registered: theirs to manage
        family = token.partition(TOKEN_SEP)[0]
        if (family not in VARIANT_FAMILIES
                or stamp == VARIANT_FAMILIES.versions((family,))[0]):
            return reg.get(token)
        # Fall through: the family was replaced after materialisation.
    family, params = parse_variant_token(token)
    fam = VARIANT_FAMILIES.get(family)
    fam_version = VARIANT_FAMILIES.versions((family,))[0]
    try:
        spec = fam.build(token, **params)
    except TypeError as exc:
        raise ValueError(
            f"variant family {family!r} rejected parameters {params!r}: "
            f"{exc}") from None
    if spec.name != token:
        raise ValueError(
            f"variant family {family!r} built a platform named "
            f"{spec.name!r} for token {token!r}")
    try:
        registered = reg.register(spec, replace=token in reg)
    except ValueError:
        # Another thread registered the (identical) variant first.
        registered = reg.get(token)
    if reg is PLATFORM_REGISTRY:
        _MATERIALISED[token] = fam_version
    return registered


def ensure_variant_platforms(names: Iterable[str],
                             registry: Optional[Registry] = None) -> None:
    """Materialise every variant token in a platform selection.

    Non-token names and non-sequence inputs pass through untouched —
    :func:`repro.api.registry.resolve_platforms` owns their validation and
    error messages.
    """
    if isinstance(names, (str, bytes)):
        return
    for name in names:
        if is_variant_token(name):
            ensure_variant(name, registry=registry)


# ----------------------------------------------------------------------
# Builtin families


@register_variant_family(
    "noisy", description="ReFloat + RTN noise: sigma, seed, fresh, setup")
def _noisy_variant(name: str, sigma: float, seed: Optional[int] = None,
                   fresh: int = 1, setup: int = 0) -> PlatformSpec:
    """``sigma`` (required), ``seed`` (default: the matrix sid), ``fresh``
    (redraw per apply; 0 freezes one realisation), ``setup`` (charge the
    one-time mapping write — the Fig. 10 accounting)."""
    return noisy_platform_spec(
        name, sigma=float(sigma),
        seed=None if seed is None else int(seed),
        fresh_per_apply=bool(fresh), include_setup=bool(setup))


@register_variant_family(
    "truncated", description="naive IEEE truncation: e/f bit budgets")
def _truncated_variant(name: str, e: int, f: int) -> PlatformSpec:
    return truncated_platform_spec(name, exp_bits=int(e), frac_bits=int(f))


@register_variant_family(
    "feinberg", description="[32] window model: e/f bits, overflow policy")
def _feinberg_variant(name: str, e: int = 6, f: int = 52,
                      policy: str = "wrap") -> PlatformSpec:
    return feinberg_platform_spec(name, exp_bits=int(e), frac_bits=int(f),
                                  policy=policy)


# ----------------------------------------------------------------------
# The declarative sweep grid


def _axis_values(values: Any) -> Tuple[Any, ...]:
    """One axis of the grid: a scalar pins the parameter, a sequence sweeps
    it.  Values are validated through the token formatter so a bad grid
    fails at construction, not mid-sweep."""
    if isinstance(values, (str, bytes)) or not isinstance(
            values, (list, tuple)):
        values = (values,)
    out = tuple(values)
    if not out:
        raise ValueError("grid axes must be non-empty")
    for value in out:
        _format_value(value)
    return out


@dataclass(frozen=True)
class SweepSpec:
    """A declarative scenario sweep: one variant family over a parameter grid.

    ``grid`` maps parameter names to value axes (scalars pin a parameter;
    sequences sweep it); the sweep expands to the cartesian product in the
    axis order given.  ``solvers`` and ``sids`` add solver/matrix axes
    (``sids=None`` = the full 12-matrix suite); ``scale`` of ``None``
    defers to the active config.  ``tols`` adds a convergence-tolerance
    axis: each tolerance runs the whole grid under the base criterion with
    its ``tol`` replaced, and the resolved per-cell criterion is stamped
    into every :class:`~repro.api.specs.RunRequest` (so journal and cache
    keys distinguish the tolerance cells); ``None`` keeps the single
    active-criterion behaviour and the exact historical result shape.
    ``baseline`` platforms are solved once per (solver, sid, tolerance)
    and grafted into every variant's result, so speedups come without
    re-solving the reference per grid point.  Execute with
    :func:`repro.experiments.common.run_sweep`.
    """

    family: str
    grid: Any
    solvers: Tuple[str, ...] = ("cg",)
    baseline: Optional[Tuple[str, ...]] = ("gpu",)
    sids: Optional[Tuple[int, ...]] = None
    scale: Optional[str] = None
    tols: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        VARIANT_FAMILIES.get(self.family)  # unknown family fails fast
        grid = self.grid
        if isinstance(grid, dict):
            grid = tuple(grid.items())
        elif isinstance(grid, (list, tuple)):
            grid = tuple((k, v) for k, v in grid)
        else:
            raise ValueError(
                f"grid must be a dict or sequence of (name, values) pairs, "
                f"got {type(grid).__name__}")
        if not grid:
            raise ValueError("grid must name at least one parameter axis")
        names = [str(k) for k, _ in grid]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate grid axes in {names}")
        object.__setattr__(self, "grid", tuple(
            (str(k), _axis_values(v)) for k, v in grid))
        object.__setattr__(self, "solvers", _as_tuple(self.solvers, str))
        if not self.solvers:
            raise ValueError("solvers must name at least one solver")
        object.__setattr__(self, "baseline", _as_tuple(self.baseline, str))
        object.__setattr__(self, "sids", _as_tuple(self.sids, int))
        _check_scale(self.scale, required=False)
        if self.tols is not None:
            tols = _as_tuple(self.tols, float)
            if not tols:
                raise ValueError(
                    "tols must name at least one tolerance (or be None)")
            for tol in tols:
                if not (tol > 0.0 and tol == tol and tol != float("inf")):
                    raise ValueError(
                        f"tolerances must be positive finite floats, "
                        f"got {tol!r}")
            if len(set(tols)) != len(tols):
                raise ValueError(f"duplicate tolerances in {tols}")
            object.__setattr__(self, "tols", tols)

    # -- expansion -------------------------------------------------------

    @property
    def axes(self) -> Tuple[str, ...]:
        """Grid parameter names, in sweep (= product) order."""
        return tuple(name for name, _ in self.grid)

    def variants(self) -> Tuple[Tuple[str, Dict[str, Any]], ...]:
        """The grid points as ``(token, params)``, in deterministic order.

        The cartesian product iterates the last axis fastest (like nested
        loops over ``grid``'s axis order); the token spelling itself is
        canonical (sorted keys), so equal grids expand identically
        everywhere.
        """
        names = self.axes
        out = []
        for combo in itertools.product(*(vals for _, vals in self.grid)):
            params = dict(zip(names, combo))
            out.append((variant_token(self.family, params), params))
        return tuple(out)

    def tokens(self) -> Tuple[str, ...]:
        return tuple(token for token, _ in self.variants())

    def replace(self, **changes: Any) -> "SweepSpec":
        return replace(self, **changes)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["grid"] = [[name, list(values)] for name, values in self.grid]
        return tag_payload(data, "SweepSpec", _JSON_VERSION)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        return cls(**parse_payload(data, "SweepSpec", _JSON_VERSION))

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
