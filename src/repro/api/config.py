"""Typed runtime configuration — the *only* module that reads ``REPRO_*`` vars.

Every runtime knob the package honours is a field of the frozen
:class:`RunConfig` dataclass, and :meth:`RunConfig.from_env` is the single
place the corresponding ``REPRO_*`` environment variables are parsed (CI
greps for exactly that invariant).  Everything downstream —
:mod:`repro.experiments.common`, :mod:`repro.experiments.store`, the suite
scale resolution — consumes a :class:`RunConfig` object, never
``os.environ``.

Resolution order, strongest first:

1. explicit function arguments (``run_suite(max_workers=4)``);
2. an installed config (:func:`set_active`, or the :func:`use` context
   manager — also what ``run_suite(config=...)`` does internally);
3. the environment, re-read on every :func:`active` call so tests and
   subprocesses that mutate ``os.environ`` keep working unchanged;
4. the field defaults.

| env var                   | field            | meaning                    |
|---------------------------|------------------|----------------------------|
| ``REPRO_FULL=1``          | ``scale``        | default scale ``"paper"``  |
| ``REPRO_SUITE_WORKERS``   | ``workers``      | suite fan-out width        |
| ``REPRO_SUITE_EXECUTOR``  | ``executor``     | ``thread`` / ``process``   |
| ``REPRO_ASSET_CACHE_MB``  | ``asset_cache_mb`` | in-process LRU budget    |
| ``REPRO_ASSET_STORE``     | ``store``        | on-disk asset store root   |
| ``REPRO_ASSET_STORE_VERIFY=0`` | ``store_verify`` | skip store checksums  |
| ``REPRO_SKIP_KAPPA=1``    | ``skip_kappa``   | Table V without kappa      |
| ``REPRO_REQUEST_TIMEOUT`` | ``request_timeout`` | per-request seconds     |
| ``REPRO_REQUEST_RETRIES`` | ``request_retries`` | extra attempts on error |
| ``REPRO_RETRY_BACKOFF``   | ``retry_backoff``   | backoff base seconds    |
| ``REPRO_RUN_LEDGER``      | ``ledger``       | run-ledger root dir        |
| ``REPRO_SERVICE_STORE``   | ``service_store``   | remote store base URL   |
| ``REPRO_SERVICE_BATCH_WINDOW`` | ``service_batch_window`` | coalescing window (s) |
| ``REPRO_SERVICE_BATCH_MAX`` | ``service_batch_max`` | max coalesced batch   |
| ``REPRO_SERVICE_COALESCE=0`` | ``service_coalesce`` | disable coalescing   |
| ``REPRO_SOLVER_TOL``      | ``criterion.tol``  | convergence tolerance    |
| ``REPRO_SOLVER_MAX_ITERATIONS`` | ``criterion.max_iterations`` | iteration budget |
| ``REPRO_SOLVER_DIVERGENCE_FACTOR`` | ``criterion.divergence_factor`` | breakdown multiple |
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.solvers.base import ConvergenceCriterion
from repro.util.validation import (
    check_env_nonnegative_float,
    check_env_nonnegative_int,
    check_env_positive_float,
    check_env_positive_int,
    check_nonnegative_int,
    check_positive_int,
)

__all__ = [
    "EXECUTORS",
    "SCALES",
    "RunConfig",
    "active",
    "set_active",
    "use",
]

#: Matrix scales (mirrored by :mod:`repro.sparse.gallery.suite`, which
#: imports this tuple — config is a leaf module and must not import it back).
SCALES = ("test", "default", "paper")

#: Suite fan-out executors.
EXECUTORS = ("thread", "process")

_JSON_TYPE = "RunConfig"
_JSON_VERSION = 1


def tag_payload(data: Dict[str, Any], type_name: str,
                version: int) -> Dict[str, Any]:
    """Stamp a serialised dataclass dict with its type/version envelope
    (tuples become lists so the payload is pure JSON)."""
    data = {key: list(value) if isinstance(value, tuple) else value
            for key, value in data.items()}
    data["type"] = type_name
    data["version"] = version
    return data


def parse_payload(data: Dict[str, Any], type_name: str,
                  version: int) -> Dict[str, Any]:
    """Strip and check the type/version envelope of a tagged payload."""
    data = dict(data)
    if data.pop("type", type_name) != type_name:
        raise ValueError(f"not a {type_name} payload")
    if data.pop("version", version) != version:
        raise ValueError(f"unsupported {type_name} payload version")
    return data


def check_criterion(value: Any) -> Optional[ConvergenceCriterion]:
    """Normalise a criterion field: dataclass, JSON-revived mapping, or
    ``None`` (= defer to the default / the active config).  Shared by
    :class:`RunConfig` and the :mod:`repro.api.specs` job objects."""
    if value is None or isinstance(value, ConvergenceCriterion):
        return value
    if isinstance(value, Mapping):
        return ConvergenceCriterion(**value)
    raise ValueError(
        f"criterion must be a ConvergenceCriterion, a mapping of its "
        f"fields, or None, got {type(value).__name__}")


def _parse_positive_float(env: str, name: str, hint: str = "") -> float:
    try:
        value = float(env)
    except ValueError:
        raise ValueError(
            f"{name} must be a number{hint}, got {env!r}") from None
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {env!r}")
    return value


def _parse_cache_mb(env: str, name: str = "REPRO_ASSET_CACHE_MB") -> float:
    return _parse_positive_float(env, name, hint=" (megabytes)")


def _criterion_from_env(env: Mapping[str, str]) -> Optional[ConvergenceCriterion]:
    """The ``REPRO_SOLVER_*`` overlay on the default convergence criterion.

    Returns ``None`` (= "use the built-in default") when no variable is set,
    so an env-derived config equals ``RunConfig()`` in the common case.
    """
    fields: Dict[str, Any] = {}
    raw = env.get("REPRO_SOLVER_TOL")
    if raw:
        fields["tol"] = _parse_positive_float(raw, "REPRO_SOLVER_TOL")
    raw = env.get("REPRO_SOLVER_MAX_ITERATIONS")
    if raw:
        fields["max_iterations"] = check_env_positive_int(
            "REPRO_SOLVER_MAX_ITERATIONS", raw)
    raw = env.get("REPRO_SOLVER_DIVERGENCE_FACTOR")
    if raw:
        fields["divergence_factor"] = _parse_positive_float(
            raw, "REPRO_SOLVER_DIVERGENCE_FACTOR")
    return ConvergenceCriterion(**fields) if fields else None


@dataclass(frozen=True)
class RunConfig:
    """Runtime configuration for asset resolution and suite execution.

    ``None`` fields mean "use the built-in default" (scale ``"default"``,
    one worker per task up to the CPU count, unbounded asset cache, no
    persistent store).  Instances are frozen, hashable and JSON-round-trip
    losslessly via :meth:`to_json`/:meth:`from_json`.
    """

    scale: Optional[str] = None
    workers: Optional[int] = None
    executor: str = "thread"
    asset_cache_mb: Optional[float] = None
    store: Optional[str] = None
    store_verify: bool = True
    skip_kappa: bool = False
    criterion: Optional[ConvergenceCriterion] = None
    #: Per-request execution budget in seconds (``None`` = no timeout).
    #: Enforced by the executor fan-outs; the serial path cannot interrupt
    #: a running solve and ignores it.
    request_timeout: Optional[float] = None
    #: Extra attempts after a request raises (0 = fail on the first error,
    #: the historical behaviour).  Process-pool *crash* recovery is not
    #: charged against this budget — resubmission after a pool break is
    #: bounded by the poison-pill counter instead.
    request_retries: int = 0
    #: Deterministic exponential backoff base: retry ``n`` sleeps
    #: ``retry_backoff * 2**(n-1)`` seconds (0 = retry immediately).
    retry_backoff: float = 0.0
    #: Base URL of a solve-service daemon whose asset store backs this
    #: host's local store cache (``http://host:port``; ``None`` = local
    #: store only).  On a local miss the entry is fetched over the wire
    #: and installed; freshly built entries are published back.
    service_store: Optional[str] = None
    #: Coalescing window of the service daemon, in seconds: a batch is
    #: dispatched when this much time passed since its first request
    #: (0 = dispatch immediately, i.e. no time-based coalescing).
    service_batch_window: float = 0.05
    #: Maximum requests per coalesced batch; a batch reaching this size
    #: dispatches immediately without waiting for the window.
    service_batch_max: int = 8
    #: Whether the service daemon coalesces same-key requests at all
    #: (``REPRO_SERVICE_COALESCE=0`` turns every request into its own
    #: batch — the benchmark baseline).
    service_coalesce: bool = True
    #: Run-ledger root directory (``REPRO_RUN_LEDGER``).  ``None`` =
    #: ``ledger/`` under the asset-store root (no store, no ledger); the
    #: literal ``off``/``none``/``0`` disables the ledger outright.  See
    #: :mod:`repro.experiments.ledger`.
    ledger: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale is not None and self.scale not in SCALES:
            raise ValueError(
                f"scale must be one of {SCALES}, got {self.scale!r}")
        object.__setattr__(self, "criterion",
                           check_criterion(self.criterion))
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        if self.workers is not None:
            object.__setattr__(self, "workers",
                               check_positive_int(self.workers, "workers"))
        if self.asset_cache_mb is not None:
            mb = float(self.asset_cache_mb)
            if not mb > 0:
                raise ValueError(
                    f"asset_cache_mb must be positive, got {mb!r}")
            object.__setattr__(self, "asset_cache_mb", mb)
        if self.store is not None:
            object.__setattr__(self, "store", os.fspath(self.store))
        if self.request_timeout is not None:
            timeout = float(self.request_timeout)
            if not (timeout > 0 and timeout == timeout
                    and timeout != float("inf")):
                raise ValueError(
                    f"request_timeout must be positive and finite, got "
                    f"{self.request_timeout!r}")
            object.__setattr__(self, "request_timeout", timeout)
        object.__setattr__(self, "request_retries", check_nonnegative_int(
            self.request_retries, "request_retries"))
        backoff = float(self.retry_backoff)
        if not (backoff >= 0 and backoff != float("inf")):
            raise ValueError(
                f"retry_backoff must be non-negative and finite, got "
                f"{self.retry_backoff!r}")
        object.__setattr__(self, "retry_backoff", backoff)
        if self.service_store is not None:
            url = str(self.service_store).rstrip("/")
            if not url.startswith(("http://", "https://")):
                raise ValueError(
                    f"service_store must be an http(s) base URL, got "
                    f"{self.service_store!r}")
            object.__setattr__(self, "service_store", url)
        window = float(self.service_batch_window)
        if not (window >= 0 and window != float("inf")):
            raise ValueError(
                f"service_batch_window must be non-negative and finite, "
                f"got {self.service_batch_window!r}")
        object.__setattr__(self, "service_batch_window", window)
        object.__setattr__(self, "service_batch_max", check_positive_int(
            self.service_batch_max, "service_batch_max"))
        object.__setattr__(self, "service_coalesce",
                           bool(self.service_coalesce))
        if self.ledger is not None:
            object.__setattr__(self, "ledger", os.fspath(self.ledger))

    # -- environment ----------------------------------------------------

    @classmethod
    def from_env(cls, **overrides: Any) -> "RunConfig":
        """Build a config from ``REPRO_*`` variables; ``overrides`` win.

        This classmethod is the package's single point of environment
        access.  Invalid values raise ``ValueError`` naming the variable
        and the offending value, exactly as the pre-config code did.
        """
        env = os.environ
        fields: Dict[str, Any] = {}
        fields["scale"] = "paper" if env.get("REPRO_FULL") == "1" else None
        raw = env.get("REPRO_SUITE_WORKERS")
        fields["workers"] = (check_env_positive_int("REPRO_SUITE_WORKERS", raw)
                             if raw else None)
        raw = env.get("REPRO_SUITE_EXECUTOR")
        if raw and raw not in EXECUTORS:
            raise ValueError(
                f"REPRO_SUITE_EXECUTOR must be one of {EXECUTORS}, "
                f"got REPRO_SUITE_EXECUTOR={raw!r}")
        fields["executor"] = raw or "thread"
        raw = env.get("REPRO_ASSET_CACHE_MB")
        fields["asset_cache_mb"] = _parse_cache_mb(raw) if raw else None
        fields["store"] = env.get("REPRO_ASSET_STORE") or None
        fields["store_verify"] = env.get("REPRO_ASSET_STORE_VERIFY", "1") != "0"
        fields["skip_kappa"] = env.get("REPRO_SKIP_KAPPA") == "1"
        raw = env.get("REPRO_REQUEST_TIMEOUT")
        fields["request_timeout"] = (
            check_env_positive_float("REPRO_REQUEST_TIMEOUT", raw)
            if raw else None)
        raw = env.get("REPRO_REQUEST_RETRIES")
        fields["request_retries"] = (
            check_env_nonnegative_int("REPRO_REQUEST_RETRIES", raw)
            if raw else 0)
        raw = env.get("REPRO_RETRY_BACKOFF")
        fields["retry_backoff"] = (
            check_env_nonnegative_float("REPRO_RETRY_BACKOFF", raw)
            if raw else 0.0)
        fields["service_store"] = env.get("REPRO_SERVICE_STORE") or None
        raw = env.get("REPRO_SERVICE_BATCH_WINDOW")
        fields["service_batch_window"] = (
            check_env_nonnegative_float("REPRO_SERVICE_BATCH_WINDOW", raw)
            if raw else 0.05)
        raw = env.get("REPRO_SERVICE_BATCH_MAX")
        fields["service_batch_max"] = (
            check_env_positive_int("REPRO_SERVICE_BATCH_MAX", raw)
            if raw else 8)
        fields["service_coalesce"] = env.get("REPRO_SERVICE_COALESCE",
                                             "1") != "0"
        fields["ledger"] = env.get("REPRO_RUN_LEDGER") or None
        fields["criterion"] = _criterion_from_env(env)
        fields.update(overrides)
        return cls(**fields)

    # -- derived values --------------------------------------------------

    @property
    def asset_cache_bytes(self) -> Optional[int]:
        """The LRU byte budget, or ``None`` for an unbounded cache."""
        if self.asset_cache_mb is None:
            return None
        return int(self.asset_cache_mb * (1 << 20))

    @property
    def effective_criterion(self) -> ConvergenceCriterion:
        """The convergence criterion every solver call site consumes.

        ``None`` means the paper default (``ConvergenceCriterion()``: rtol
        1e-8, 20000-iteration budget) — the single place that default is
        spelled; experiment code must resolve through here, never repeat the
        literal (CI greps for the literal).
        """
        if self.criterion is not None:
            return self.criterion
        return ConvergenceCriterion()

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (validated like the original)."""
        return replace(self, **changes)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return tag_payload(asdict(self), _JSON_TYPE, _JSON_VERSION)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunConfig":
        return cls(**parse_payload(data, _JSON_TYPE, _JSON_VERSION))

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))


#: Explicitly-installed config (``None`` = derive from the environment on
#: every read).  A plain module global on purpose: worker processes fork
#: with it set, and worker *threads* of a fan-out must see the config the
#: launching call installed.
_ACTIVE: Optional[RunConfig] = None


def active() -> RunConfig:
    """The effective config: the installed one, else a fresh env read."""
    return _ACTIVE if _ACTIVE is not None else RunConfig.from_env()


def set_active(config: Optional[RunConfig]) -> None:
    """Install ``config`` as the process-wide default (``None`` resets to
    environment-derived behaviour)."""
    global _ACTIVE
    _ACTIVE = config


@contextlib.contextmanager
def use(config: Optional[RunConfig]) -> Iterator[RunConfig]:
    """Temporarily install ``config`` (restores the previous one on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = config
    try:
        yield active()
    finally:
        _ACTIVE = previous
