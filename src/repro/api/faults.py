"""Deterministic fault injection and structured failure records.

The run engine (:mod:`repro.experiments.common`) promises production
failure semantics — bounded retries, per-request timeouts, process-pool
recovery — and every one of those paths must be exercised by *repeatable*
tests, not by hoping a worker happens to die.  This module provides both
halves:

* :class:`RunFailure` — the structured record the engine returns (under
  ``on_error="collect"``) instead of exploding: request key, exception
  type/message, traceback, attempt count, and the *phase* the request died
  in (``"solve"`` — the request raised; ``"timeout"`` — it outlived
  ``request_timeout``; ``"pool"`` — it was poison-pilled after breaking
  the process pool twice; ``"asset"`` — a store pre-warm node failed to
  materialise its entry; ``"dependency"`` — the node itself never ran
  because something it depends on failed, see
  :meth:`RunFailure.from_dependency`).

* a **fault plan**: a set of fault tokens spelled in the variant-token
  grammar of :mod:`repro.api.sweep` (``kind@key=value,...``)::

      crash@attempt=1,sid=2257       SIGKILL the executing process
      hang@secs=30,sid=494           sleep 30s inside the request
      fail@attempts=1,sid=353        raise InjectedFaultError, once

  Tokens are self-describing strings, so a plan crosses the process-pool
  pickle boundary as data: the engine ships the active plan's tokens with
  every task payload and the worker materialises them from *its own*
  :data:`FAULT_KINDS` registry — exactly how variant tokens rebuild
  platforms in processes that only know the builtins.  User fault kinds
  register via :func:`register_fault_kind` (as an import side effect of an
  importable module, for spawn-started workers).

Faults fire at **named injection points** that ``run_request`` consults:
``"solve"`` (before the solve starts — the default) and ``"result"``
(after the solve completed, before the result is returned).  Matching is
on ``(point, sid, attempt)``: ``attempt=1`` fires only on the first
execution (so the retried request succeeds — the recovery-test shape),
``attempt=0`` fires on *every* execution (a persistent crasher, the
poison-pill-test shape), and an omitted ``sid`` matches every matrix.
A fault-free run never pays more than one ``is None`` check per
injection point.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

from repro.api.registry import Registry
from repro.api.sweep import TOKEN_SEP, parse_variant_token

__all__ = [
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "RunFailure",
    "active_fault_plan",
    "consult",
    "install_fault_plan",
    "parse_fault",
    "plan_tokens",
    "register_fault_kind",
    "sync_fault_plan",
    "use_fault_plan",
]

#: The places ``run_request`` consults the active plan.
INJECTION_POINTS = ("solve", "result")

#: The phases a request can fail in (see :class:`RunFailure`).
FAILURE_PHASES = ("solve", "timeout", "pool", "asset", "dependency")


class InjectedFaultError(RuntimeError):
    """The transient exception the ``fail`` fault kind raises."""


# ----------------------------------------------------------------------
# Structured failure records


@dataclass(frozen=True)
class RunFailure:
    """One request (or request-shaped unit of work) that did not produce a
    result.

    ``key`` is the canonical identity of the work (for engine requests,
    :meth:`repro.api.specs.RunRequest.key`); ``attempts`` counts executions
    actually started; ``phase`` says which failure path recorded it.  The
    original exception object rides along in ``exception`` for
    ``on_error="raise"`` re-raising but stays out of :meth:`to_dict` —
    the record itself is pure JSON.
    """

    key: str
    phase: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    sid: Optional[int] = None
    solver: Optional[str] = None
    exception: Optional[BaseException] = field(
        default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.phase not in FAILURE_PHASES:
            raise ValueError(
                f"phase must be one of {FAILURE_PHASES}, got {self.phase!r}")

    @classmethod
    def from_exception(cls, exc: BaseException, *, key: str, phase: str,
                       attempts: int = 1, sid: Optional[int] = None,
                       solver: Optional[str] = None) -> "RunFailure":
        """Build a record from a caught exception (traceback included when
        the exception carries one — process-pool exceptions arrive with the
        remote traceback already folded into their message)."""
        tb = "".join(traceback_mod.format_exception(
            type(exc), exc, exc.__traceback__))
        return cls(key=key, phase=phase, error_type=type(exc).__name__,
                   message=str(exc), traceback=tb, attempts=attempts,
                   sid=sid, solver=solver, exception=exc)

    @classmethod
    def from_dependency(cls, *, key: str, dependency_key: str,
                        dependency_phase: str, sid: Optional[int] = None,
                        solver: Optional[str] = None) -> "RunFailure":
        """The record for a node the scheduler *skipped*: it never ran
        (``attempts=0``), because ``dependency_key`` — something it needed
        — failed in ``dependency_phase``.  No exception rides along; under
        ``on_error="raise"`` the dependency's own failure is what
        re-raises."""
        return cls(key=key, phase="dependency",
                   error_type="DependencyFailed",
                   message=(f"skipped: dependency {dependency_key!r} failed "
                            f"in phase {dependency_phase!r}"),
                   attempts=0, sid=sid, solver=solver)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe record (the live exception object is dropped)."""
        return {
            "key": self.key, "phase": self.phase,
            "error_type": self.error_type, "message": self.message,
            "traceback": self.traceback, "attempts": self.attempts,
            "sid": self.sid, "solver": self.solver,
        }


# ----------------------------------------------------------------------
# Fault kinds and specs


@dataclass(frozen=True)
class FaultSpec:
    """One materialised fault: where it fires and what it does.

    ``fires_on`` decides attempt matching (kinds differ: ``crash`` fires on
    one exact attempt, ``fail`` on every attempt up to a count); ``action``
    performs the fault.  Neither crosses the pickle boundary — tokens do,
    and every process rebuilds specs from its own kind registry.
    """

    token: str
    kind: str
    point: str
    sid: Optional[int]
    fires_on: Callable[[int], bool] = field(compare=False)
    action: Callable[[], None] = field(compare=False)

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"fault {self.token!r}: point must be one of "
                f"{INJECTION_POINTS}, got {self.point!r}")

    def matches(self, point: str, sid: int, attempt: int) -> bool:
        return (point == self.point
                and (self.sid is None or sid == self.sid)
                and self.fires_on(attempt))


@dataclass(frozen=True)
class FaultKind:
    """One registered fault kind: ``build(token, **params) -> FaultSpec``.

    Builders must be deterministic in their parameters, like variant-family
    builders: every process that materialises the same token must produce a
    fault with identical behaviour.
    """

    name: str
    build: Callable[..., FaultSpec]
    description: str = ""


#: Name → :class:`FaultKind`.  Builtins (``crash``, ``hang``, ``fail``)
#: register below; user kinds via :func:`register_fault_kind`.
FAULT_KINDS = Registry("fault kind")


def register_fault_kind(name: str, *, description: str = "",
                        replace: bool = False,
                        registry: Optional[Registry] = None,
                        ) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn(token, **params) -> FaultSpec`` as a
    fault-kind builder (returned unchanged, so it stays callable)."""
    reg = FAULT_KINDS if registry is None else registry

    def deco(fn: Callable) -> Callable:
        reg.register(FaultKind(name=name, build=fn,
                               description=description), replace=replace)
        return fn

    return deco


def parse_fault(token: str) -> FaultSpec:
    """Materialise one fault token (the variant-token grammar).

    Unknown kinds raise the kind registry's ``KeyError``; parameters the
    builder rejects raise ``ValueError`` naming both.
    """
    kind_name, params = parse_variant_token(token)
    kind = FAULT_KINDS.get(kind_name)
    try:
        spec = kind.build(token, **params)
    except TypeError as exc:
        raise ValueError(
            f"fault kind {kind_name!r} rejected parameters {params!r}: "
            f"{exc}") from None
    if spec.token != token:
        raise ValueError(
            f"fault kind {kind_name!r} built a fault for token "
            f"{spec.token!r} instead of {token!r}")
    return spec


def _attempt_matcher(attempt: Any) -> Callable[[int], bool]:
    """Exact-attempt matching: ``N`` fires on attempt N only, ``0`` always."""
    n = int(attempt)
    if n < 0:
        raise ValueError(f"attempt must be >= 0 (0 = every attempt), got {n}")
    if n == 0:
        return lambda a: True
    return lambda a: a == n


@register_fault_kind(
    "crash", description="SIGKILL the executing process: sid, attempt, point")
def _crash_fault(token: str, sid: Optional[int] = None, attempt: int = 1,
                 point: str = "solve") -> FaultSpec:
    """``attempt`` (default 1: fire once, so the resubmitted request
    succeeds; 0 = every attempt, the poison-pill shape)."""

    def action() -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    return FaultSpec(token=token, kind="crash", point=str(point),
                     sid=None if sid is None else int(sid),
                     fires_on=_attempt_matcher(attempt), action=action)


@register_fault_kind(
    "hang", description="sleep inside the request: secs, sid, attempt, point")
def _hang_fault(token: str, sid: Optional[int] = None, secs: float = 3600.0,
                attempt: int = 1, point: str = "solve") -> FaultSpec:
    duration = float(secs)
    if duration <= 0:
        raise ValueError(f"hang secs must be positive, got {secs!r}")

    def action() -> None:
        time.sleep(duration)

    return FaultSpec(token=token, kind="hang", point=str(point),
                     sid=None if sid is None else int(sid),
                     fires_on=_attempt_matcher(attempt), action=action)


@register_fault_kind(
    "fail", description="raise InjectedFaultError: sid, attempts, point")
def _fail_fault(token: str, sid: Optional[int] = None, attempts: int = 1,
                point: str = "solve") -> FaultSpec:
    """``attempts`` = raise on every execution up to that count (default 1:
    a transient error one retry absorbs; 0 = every attempt, permanent)."""
    n = int(attempts)
    if n < 0:
        raise ValueError(f"attempts must be >= 0 (0 = every attempt), got {n}")
    fires_on = (lambda a: True) if n == 0 else (lambda a: a <= n)

    def action() -> None:
        raise InjectedFaultError(f"injected fault {token}")

    return FaultSpec(token=token, kind="fail", point=str(point),
                     sid=None if sid is None else int(sid),
                     fires_on=fires_on, action=action)


# ----------------------------------------------------------------------
# Fault plans


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault tokens (pure data; picklable; JSON-safe).

    Construction materialises every token once to fail fast on unknown
    kinds or bad parameters, but only the tokens are stored — each process
    that receives a plan rebuilds the specs from its own registry.
    """

    tokens: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tokens",
                           tuple(str(t) for t in self.tokens))
        for token in self.tokens:
            if TOKEN_SEP not in token:
                raise ValueError(
                    f"fault tokens look like 'kind{TOKEN_SEP}key=value,...', "
                    f"got {token!r}")
            parse_fault(token)

    def materialise(self) -> Tuple[FaultSpec, ...]:
        return tuple(parse_fault(token) for token in self.tokens)


#: The process-wide active plan and its materialised specs.  Plain module
#: globals on purpose (same contract as the config module): forked workers
#: inherit them, and the engine re-syncs spawn-started workers by shipping
#: the tokens with every task payload.
_ACTIVE_PLAN: Optional[FaultPlan] = None
_ACTIVE_SPECS: Tuple[FaultSpec, ...] = ()


def install_fault_plan(plan: Optional[Any]) -> Optional[FaultPlan]:
    """Install a fault plan process-wide (``None`` or ``()`` clears it).

    Accepts a :class:`FaultPlan` or any iterable of tokens; returns the
    installed plan.
    """
    global _ACTIVE_PLAN, _ACTIVE_SPECS
    if plan is not None and not isinstance(plan, FaultPlan):
        plan = FaultPlan(tokens=tuple(plan))
    if plan is not None and not plan.tokens:
        plan = None
    _ACTIVE_PLAN = plan
    _ACTIVE_SPECS = () if plan is None else plan.materialise()
    return plan


def active_fault_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


def plan_tokens() -> Tuple[str, ...]:
    """The active plan's tokens (empty when no plan) — the exact payload
    the engine ships to worker processes."""
    return () if _ACTIVE_PLAN is None else _ACTIVE_PLAN.tokens


def sync_fault_plan(tokens: Optional[Iterable[str]]) -> None:
    """Worker-side sync: adopt ``tokens`` as the active plan when they
    differ from the current one (cheap no-op on every later task)."""
    tokens = () if tokens is None else tuple(tokens)
    if tokens == plan_tokens():
        return
    install_fault_plan(tokens or None)


@contextlib.contextmanager
def use_fault_plan(plan: Optional[Any]) -> Iterator[Optional[FaultPlan]]:
    """Temporarily install a plan (restores the previous one on exit)."""
    previous = _ACTIVE_PLAN
    try:
        yield install_fault_plan(plan)
    finally:
        install_fault_plan(previous)


def consult(point: str, *, sid: int, solver: Optional[str] = None,
            attempt: int = 1) -> None:
    """Fire every active fault matching ``(point, sid, attempt)``.

    Called from the named injection points in ``run_request``.  The
    fault-free fast path is a single tuple-truthiness check.  ``solver``
    is accepted for forward-compatible call sites but not matched on yet.
    """
    specs = _ACTIVE_SPECS
    if not specs:
        return
    for spec in specs:
        if spec.matches(point, sid, attempt):
            spec.action()
