"""Name-keyed registries for SpMV platforms and solvers.

The evaluation used to hardcode its platform grid (string keys inline in
``run_matrix``) and its solver metadata (two parallel dicts).  Both are now
data: a :class:`PlatformSpec` bundles an operator factory with a timing
model, a :class:`SolverSpec` bundles the solve callable with its
per-iteration operation shape, and the module-level registries map names to
specs.  ``run_matrix``/``run_suite`` iterate the registry, so registering a
new platform or solver — from user code, without touching
``repro/experiments/common.py`` — is all it takes to sweep it::

    from repro.api import PlatformContext, register_platform

    @register_platform("exact_flat", timing=lambda ctx, it: it * 1e-6)
    def _exact_flat(assets, ctx):
        return assets.exact_op

    run_suite("cg", platforms=["gpu", "exact_flat"])

Builtin registrations live in :mod:`repro.api.platforms` and
:mod:`repro.api.solvers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

__all__ = [
    "PlatformContext",
    "PlatformSpec",
    "SolverSpec",
    "Registry",
    "PLATFORM_REGISTRY",
    "SOLVER_REGISTRY",
    "register_platform",
    "register_solver",
    "resolve_platforms",
]


@dataclass(frozen=True)
class PlatformContext:
    """Everything a platform's factories may need about the current run.

    Handed to both the operator factory and the timing callable, so a
    platform can be registered without importing anything from
    ``repro.experiments``: the context carries the matrix identity/shape,
    the partition size, the per-matrix format specs, and the active
    solver's per-iteration operation shape.
    """

    sid: int
    scale: str
    solver: str
    n_rows: int
    nnz: int
    n_blocks: int
    spec: Any                 # ReFloatSpec for this matrix (Table VII)
    feinberg_spec: Any        # FeinbergSpec for the [32] platform
    spmvs_per_iteration: int
    vector_ops_per_iteration: int
    gpu_vector_kernels_per_iteration: int


@dataclass(frozen=True)
class PlatformSpec:
    """One sweepable platform: an operator factory plus a timing model.

    ``operator(assets, ctx)`` builds (or fetches from ``assets``) the SpMV
    operator the solver iterates with; ``timing(ctx, iterations)`` converts
    an iteration count into modelled seconds.  ``results_from`` names
    another platform whose :class:`SolverResult` this one reuses instead of
    solving (the functionally-correct baseline reuses the GPU numerics);
    such specs carry ``operator=None``.  ``always_timed`` charges the
    timing model even for non-converged results (reference platforms);
    otherwise non-convergence is reported as infinite time (the paper's NC).
    """

    name: str
    operator: Optional[Callable[[Any, PlatformContext], Any]]
    timing: Callable[[PlatformContext, int], float]
    results_from: Optional[str] = None
    always_timed: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform name must be non-empty")
        if self.operator is None and self.results_from is None:
            raise ValueError(
                f"platform {self.name!r} needs an operator factory or a "
                f"results_from platform to reuse")
        if self.results_from == self.name:
            raise ValueError(
                f"platform {self.name!r} cannot reuse its own results")


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver: the callable plus its operation shape.

    ``spmvs_per_iteration``/``vector_ops_per_iteration`` feed the
    accelerator timing models (Section VI-B: BiCGSTAB does two whole-matrix
    SpMVs per iteration); ``gpu_vector_kernels_per_iteration`` is the GPU
    roofline's kernel count (defaults to the accelerator vector-op count
    when a registrant does not distinguish them).  ``multi_rhs`` marks
    batched solvers (``block_cg``/``solve_many``) that take an ``(n, k)``
    right-hand-side block — first-class registrants, but rejected by the
    single-RHS ``run_matrix`` path with a named error.
    """

    name: str
    solve: Callable[..., Any]
    spmvs_per_iteration: int
    vector_ops_per_iteration: int
    gpu_vector_kernels_per_iteration: Optional[int] = None
    multi_rhs: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("solver name must be non-empty")
        if self.spmvs_per_iteration < 1:
            raise ValueError(
                f"solver {self.name!r}: spmvs_per_iteration must be >= 1")
        if self.vector_ops_per_iteration < 0:
            raise ValueError(
                f"solver {self.name!r}: vector_ops_per_iteration must be "
                f">= 0")

    @property
    def gpu_vector_kernels(self) -> int:
        if self.gpu_vector_kernels_per_iteration is not None:
            return self.gpu_vector_kernels_per_iteration
        return self.vector_ops_per_iteration


class Registry:
    """An ordered name → spec map with duplicate rejection.

    Registration order is preserved (it defines default sweep order for
    anything iterating the registry).  Registering an already-taken name
    raises ``ValueError`` unless ``replace=True`` — silent shadowing of a
    builtin platform would corrupt pinned results.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._specs: Dict[str, Any] = {}
        self._generation = 0
        self._versions: Dict[str, int] = {}

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped by every register/unregister).

        Prefer :meth:`versions` for cache keys — the raw counter also moves
        on *add-only* registrations (e.g. a sweep materialising a new
        variant token), which would needlessly invalidate cached results
        whose own names never changed meaning.
        """
        return self._generation

    def versions(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Per-name registration stamps, for caches keyed by these names.

        A ``replace=True`` re-registration bumps the stamp of exactly that
        name — the same name now means different work, and serving old
        results would be silent corruption — while registrations of
        *other* names leave these stamps (and therefore the cache keys
        built from them) untouched.  Unknown names raise the registry's
        ``KeyError``.
        """
        out = []
        for name in names:
            if name not in self._versions:
                self.get(name)  # raises the canonical unknown-name error
            out.append(self._versions[name])
        return tuple(out)

    def register(self, spec: Any, replace: bool = False) -> Any:
        if not replace and spec.name in self._specs:
            raise ValueError(
                f"{self._kind} {spec.name!r} is already registered "
                f"(pass replace=True to override)")
        self._specs[spec.name] = spec
        self._generation += 1
        self._versions[spec.name] = self._generation
        return spec

    def unregister(self, name: str) -> None:
        """Remove a registration (KeyError when absent) — test cleanup."""
        del self._specs[name]
        self._versions.pop(name, None)
        self._generation += 1

    def get(self, name: str) -> Any:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown {self._kind} {name!r}; registered: "
                f"{sorted(self._specs)}") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(tuple(self._specs))

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self._kind}: {list(self._specs)})"


#: The process-wide registries.  Builtin registrations are installed when
#: :mod:`repro.api` is imported.
PLATFORM_REGISTRY = Registry("platform")
SOLVER_REGISTRY = Registry("solver")


def register_platform(name: str, *,
                      timing: Callable[[PlatformContext, int], float],
                      results_from: Optional[str] = None,
                      always_timed: bool = False,
                      description: str = "",
                      replace: bool = False,
                      registry: Optional[Registry] = None,
                      ) -> Callable[[Callable], Callable]:
    """Decorator registering a platform operator factory.

    The decorated callable receives ``(assets, ctx)`` — the shared
    per-matrix :class:`MatrixAssets` and a :class:`PlatformContext` — and
    returns the SpMV operator to solve with.  Returns the factory unchanged
    so it stays directly callable/testable.
    """
    reg = PLATFORM_REGISTRY if registry is None else registry

    def deco(factory: Callable) -> Callable:
        reg.register(PlatformSpec(name=name, operator=factory, timing=timing,
                                  results_from=results_from,
                                  always_timed=always_timed,
                                  description=description), replace=replace)
        return factory

    return deco


def register_solver(name: str, *, spmvs_per_iteration: int,
                    vector_ops_per_iteration: int,
                    gpu_vector_kernels_per_iteration: Optional[int] = None,
                    multi_rhs: bool = False,
                    description: str = "",
                    replace: bool = False,
                    registry: Optional[Registry] = None,
                    ) -> Callable[[Callable], Callable]:
    """Decorator registering a solver callable with its operation shape."""
    reg = SOLVER_REGISTRY if registry is None else registry

    def deco(solve: Callable) -> Callable:
        reg.register(SolverSpec(
            name=name, solve=solve,
            spmvs_per_iteration=spmvs_per_iteration,
            vector_ops_per_iteration=vector_ops_per_iteration,
            gpu_vector_kernels_per_iteration=gpu_vector_kernels_per_iteration,
            multi_rhs=multi_rhs, description=description), replace=replace)
        return solve

    return deco


def resolve_platforms(names: Iterable[str],
                      registry: Optional[Registry] = None,
                      ) -> Tuple[str, ...]:
    """Validate a platform selection and close it over dependencies.

    A platform whose spec reuses another's results (``results_from``) pulls
    that dependency into the sweep ahead of itself, so any subset a caller
    names is runnable.  The closure is a :class:`repro.api.graph.TaskGraph`
    construction — each name is a node, each ``results_from`` an edge —
    and the returned order is its topological order: dependencies first,
    then the requested names in the order given, deduplicated.  Unknown
    names raise the registry's ``KeyError``; dependency cycles raise the
    graph's named :class:`~repro.api.graph.GraphCycleError` (a
    ``ValueError``).
    """
    from repro.api.graph import GraphCycleError, TaskGraph

    if isinstance(names, (str, bytes)):
        raise ValueError(
            f"platforms must be a sequence of names, got the bare string "
            f"{names!r} (did you mean [{names!r}]?)")
    reg = PLATFORM_REGISTRY if registry is None else registry
    graph = TaskGraph()
    for name in names:
        # Walk the results_from chain depth-first so dependencies are
        # *inserted* ahead of their dependents — the graph's insertion
        # order is the tie-break that keeps the historical ordering.
        chain: list = []
        walked: set = set()
        node = name
        while node not in graph and node not in walked:
            walked.add(node)
            chain.append(node)
            node = reg.get(node).results_from
            if node is None:
                break
        for member in reversed(chain):
            graph.add(member)
        for member in chain:
            dependency = reg.get(member).results_from
            if dependency is not None:
                graph.depend(member, dependency)
    try:
        order = graph.topological_order()
    except GraphCycleError as exc:
        raise GraphCycleError(
            f"platform dependency cycle through {exc.members[0]!r}",
            members=exc.members) from None
    if not order:
        raise ValueError("platform selection must not be empty")
    return tuple(order)
