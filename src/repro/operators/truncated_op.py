"""Plain truncated-IEEE SpMV operator — the Table I sweep platform.

Table I studies naive bit truncation: fix one field of the IEEE layout and
shrink the other.  The matrix is truncated once; the SpMV input vector is
truncated on every apply (both through
:func:`repro.formats.ieee.quantize_ieee`, whose exponent-wrap semantics model
the mod-2^bits padding of [32]).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.ieee import quantize_ieee

__all__ = ["TruncatedOperator"]


class TruncatedOperator:
    """SpMV with exp/frac-truncated matrix (once) and vector (per apply)."""

    def __init__(self, A, exp_bits: int = 11, frac_bits: int = 52,
                 rounding: str = "truncate", truncate_vector: bool = True):
        base = sp.csr_matrix(A, dtype=np.float64)
        qdata = quantize_ieee(base.data, exp_bits, frac_bits, rounding=rounding)
        self.A = sp.csr_matrix((qdata, base.indices, base.indptr), shape=base.shape)
        self.exp_bits = exp_bits
        self.frac_bits = frac_bits
        self.rounding = rounding
        self.truncate_vector = truncate_vector
        self.shape = base.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.truncate_vector:
            x = quantize_ieee(x, self.exp_bits, self.frac_bits, rounding=self.rounding)
        return self.A @ x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TruncatedOperator(exp={self.exp_bits}, frac={self.frac_bits})"
