"""Noise-injected ReFloat operator (Section VI-D, Fig. 10).

Random telegraph noise (RTN) perturbs each ReRAM cell's conductance; with
error correction disabled, every analog MVM sees fresh multiplicative noise on
the stored matrix values.  We model it the standard way (cf. [3], [32], [47]):
``g -> g * (1 + delta)``, ``delta ~ N(0, sigma^2)``, redrawn per apply.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.refloat import DEFAULT_SPEC, ReFloatSpec
from repro.operators.refloat_op import ReFloatOperator
from repro.util.rng import SeedLike, default_rng
from repro.util.validation import check_in_range

__all__ = ["NoisyReFloatOperator"]


class NoisyReFloatOperator:
    """ReFloat SpMV with per-apply multiplicative conductance noise.

    Parameters
    ----------
    A : sparse matrix
    spec : ReFloatSpec
    sigma : float
        Relative RTN deviation (the paper sweeps 0.1% .. 25%).
    seed : int | Generator | None
    fresh_per_apply : bool
        True (default): redraw noise each matvec (no error correction).
        False: freeze one noise realisation (a miscalibrated-but-stable
        array, useful as an ablation).
    """

    def __init__(self, A, spec: ReFloatSpec = DEFAULT_SPEC, sigma: float = 0.0,
                 seed: SeedLike = None, fresh_per_apply: bool = True,
                 blocked=None):
        check_in_range(sigma, "sigma", 0.0, 1.0)
        self._base = ReFloatOperator(A, spec, blocked=blocked)
        self.spec = spec
        self.sigma = float(sigma)
        self.rng = default_rng(seed)
        self.fresh_per_apply = fresh_per_apply
        self.shape = self._base.shape
        self.A = self._base.A
        if not fresh_per_apply and sigma > 0:
            self._frozen = self._draw()
        else:
            self._frozen = None

    def _draw(self) -> np.ndarray:
        return 1.0 + self.sigma * self.rng.standard_normal(self.A.nnz)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        xq = self._base.quantize_input(x, reuse=True)
        if self.sigma == 0.0:
            return self.A @ xq
        return self._noisy_matrix() @ xq

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched :meth:`matvec` with ONE conductance realisation per batch.

        A batched apply models one operand program serving all ``k`` inputs
        back-to-back, so the whole batch sees the same RTN draw (with
        ``fresh_per_apply``, the next batch redraws).  With ``sigma == 0``
        this is bit-identical per column to the matvec path.
        """
        Xq = self._base.quantize_input_batch(X, reuse=True)
        if self.sigma == 0.0:
            return self.A @ Xq
        return self._noisy_matrix() @ Xq

    def _noisy_matrix(self) -> sp.csr_matrix:
        factor = self._draw() if self.fresh_per_apply else self._frozen
        return sp.csr_matrix(
            (self.A.data * factor, self.A.indices, self.A.indptr),
            shape=self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NoisyReFloatOperator(sigma={self.sigma}, {self.spec})"
