"""SpMV operators modelling Feinberg et al. [32].

Two variants, matching the paper's Figure 8 legend:

* :class:`FeinbergOperator` — the *functional* model with the vector flaw:
  matrix exact (FPU-assisted), vector pushed through the 64-binade window
  anchored at the matrix exponent.  Non-convergent on the all-positive mass
  matrices, like the paper reports.
* :class:`FeinbergFcOperator` — "Feinberg-fc", the paper's strong baseline
  that *assumes* functional correctness: numerically identical to FP64 (it
  exists so the hardware timing model can be charged with FP64 iteration
  counts).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.feinberg import (
    FeinbergSpec,
    matrix_anchor_exponent,
    quantize_vector_feinberg,
)

__all__ = ["FeinbergOperator", "FeinbergFcOperator"]


class FeinbergOperator:
    """[32]'s datapath: exact matrix, window-quantised vector per apply.

    The padding window is anchored at the matrix's maximum entry exponent
    (``block_b=None``, the default): the crossbar mapping aligns its 64
    exponent slots against the largest stored value, and the input vector is
    driven through that window.  Passing ``block_b`` anchors per block-column
    instead (each column stripe's own max) — a strictly harsher model, kept
    for ablation.

    ``blocked`` optionally supplies a prebuilt
    :class:`repro.sparse.blocked.BlockedMatrix` whose canonical CSR is reused
    directly (``A`` is then ignored), so suite runs that already partitioned
    the matrix pay no second conversion.
    """

    def __init__(self, A, spec: FeinbergSpec = FeinbergSpec(),
                 block_b: int = None, blocked=None):
        from repro.formats import ieee

        if blocked is not None:
            # Reuse a prebuilt partition's canonical CSR (duplicates summed,
            # explicit zeros dropped) instead of re-converting the input.
            self.A = blocked.A
        else:
            self.A = sp.csr_matrix(A, dtype=np.float64)
        self.spec = spec
        self.block_b = block_b
        self.shape = self.A.shape
        self.anchor = matrix_anchor_exponent(self.A.data)  # global fallback
        n_cols = self.A.shape[1]
        if block_b is None:
            self._per_elem_anchor = np.full(n_cols, self.anchor, dtype=np.int64)
        else:
            _, exp, _ = ieee.decompose(self.A.data)
            seg = self.A.indices.astype(np.int64) >> block_b
            nseg = -(-n_cols // (1 << block_b))
            anchors = np.full(nseg, np.iinfo(np.int32).min, dtype=np.int64)
            np.maximum.at(anchors, seg, exp.astype(np.int64))
            # Columns with no entries: anchor irrelevant, use the global one.
            anchors = np.where(anchors == np.iinfo(np.int32).min,
                               self.anchor, anchors)
            self._per_elem_anchor = np.repeat(anchors, 1 << block_b)[:n_cols]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.A @ self.quantize_input(x)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched :meth:`matvec`: window-quantise ``k`` columns, one SpMM.

        The window quantisation is element-wise (each element sees its own
        anchor), so the batch is bit-identical per column to the matvec path.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D (n, k), got shape {X.shape}")
        Xq = quantize_vector_feinberg(X, self._per_elem_anchor[:, None],
                                      self.spec)
        return self.A @ Xq

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        return quantize_vector_feinberg(np.asarray(x, dtype=np.float64),
                                        self._per_elem_anchor, self.spec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FeinbergOperator(exp_bits={self.spec.exp_bits}, "
                f"policy={self.spec.policy!r}, anchor={self.anchor})")


class FeinbergFcOperator:
    """Feinberg-fc: numerically FP64; exists to carry the [32] timing model."""

    def __init__(self, A):
        self.A = sp.csr_matrix(A, dtype=np.float64)
        self.shape = self.A.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.A @ np.asarray(x, dtype=np.float64)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self.A @ np.asarray(X, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FeinbergFcOperator(shape={self.shape})"
