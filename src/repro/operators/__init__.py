"""SpMV platform operators: exact, ReFloat, Feinberg, truncated, noisy."""

from repro.operators.counting import CountingOperator, TracingOperator
from repro.operators.feinberg_op import FeinbergFcOperator, FeinbergOperator
from repro.operators.noisy import NoisyReFloatOperator
from repro.operators.refloat_op import ReFloatOperator
from repro.operators.truncated_op import TruncatedOperator
from repro.solvers.base import MatrixOperator as ExactOperator

__all__ = [
    "CountingOperator",
    "TracingOperator",
    "FeinbergFcOperator",
    "FeinbergOperator",
    "NoisyReFloatOperator",
    "ReFloatOperator",
    "TruncatedOperator",
    "ExactOperator",
]
