"""Instrumentation wrappers around SpMV operators."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.solvers.base import LinearOperator, as_operator

__all__ = ["CountingOperator", "TracingOperator"]


class CountingOperator:
    """Counts matvec applications (feeds the hardware timing model)."""

    def __init__(self, inner):
        self.inner = as_operator(inner)
        self.shape = self.inner.shape
        self.count = 0

    def matvec(self, x: np.ndarray) -> np.ndarray:
        self.count += 1
        return self.inner.matvec(x)

    def reset(self) -> None:
        self.count = 0


class TracingOperator:
    """Records input/output norms of every apply (quantisation diagnostics)."""

    def __init__(self, inner):
        self.inner = as_operator(inner)
        self.shape = self.inner.shape
        self.input_norms: List[float] = []
        self.output_norms: List[float] = []

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = self.inner.matvec(x)
        self.input_norms.append(float(np.linalg.norm(x)))
        self.output_norms.append(float(np.linalg.norm(y)))
        return y
