"""Instrumentation wrappers around SpMV operators."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.solvers.base import as_operator, operator_matmat

__all__ = ["CountingOperator", "TracingOperator"]


class CountingOperator:
    """Counts operator applications (feeds the hardware timing model).

    ``count`` is the number of *engine contractions*: a ``matvec`` is one,
    and a batched ``matmat`` is also one — the accelerator programs its
    bit-sliced operand once and streams the whole batch through it, which is
    exactly the economy the block solvers exploit.  ``columns`` tracks the
    total number of right-hand-side columns pushed (a ``matvec`` adds 1, a
    ``matmat`` adds ``k``), so ``columns / count`` is the achieved batching
    factor.
    """

    def __init__(self, inner):
        self.inner = as_operator(inner)
        self.shape = self.inner.shape
        self.count = 0
        self.columns = 0

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = self.inner.matvec(x)
        self.count += 1
        self.columns += 1
        return y

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        # Count only successful applies: a failed call must not skew the
        # contraction accounting the timing model and tests read.
        Y = operator_matmat(self.inner, X)
        self.count += 1
        self.columns += X.shape[1]
        return Y

    def reset(self) -> None:
        self.count = 0
        self.columns = 0


class TracingOperator:
    """Records input/output norms of every apply (quantisation diagnostics)."""

    def __init__(self, inner):
        self.inner = as_operator(inner)
        self.shape = self.inner.shape
        self.input_norms: List[float] = []
        self.output_norms: List[float] = []

    def matvec(self, x: np.ndarray) -> np.ndarray:
        y = self.inner.matvec(x)
        self.input_norms.append(float(np.linalg.norm(x)))
        self.output_norms.append(float(np.linalg.norm(y)))
        return y

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched apply; records the Frobenius norms of the batch."""
        Y = operator_matmat(self.inner, X)
        self.input_norms.append(float(np.linalg.norm(X)))
        self.output_norms.append(float(np.linalg.norm(Y)))
        return Y
