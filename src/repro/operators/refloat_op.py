"""The ReFloat SpMV operator (Eq. 9 as a functional platform model).

The matrix is block-partitioned and quantised **once** (matrix values never
change during the solve); the input vector is quantised **per apply** through
the vector converter (Fig. 6d) — exactly the accelerator's dataflow.  The
arithmetic equivalence is Eq. 9: per-block fixed-point MVMs scaled by
``2^(eb + ebv)`` reproduce the FP64 product of the *quantised* values, so the
functional model is ``y = ~A @ ~x`` computed in FP64 (the engine's output and
accumulation precision).  Bit-exactness of this shortcut against the
crossbar-level datapath is verified in :mod:`repro.hardware.engine` tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.formats.refloat import DEFAULT_SPEC, ReFloatSpec, quantize_vector
from repro.sparse.blocked import BlockedMatrix

__all__ = ["ReFloatOperator"]


class ReFloatOperator:
    """SpMV in ``ReFloat(b, e, f)(ev, fv)``.

    Parameters
    ----------
    A : sparse matrix
        The FP64 system matrix.
    spec : ReFloatSpec
        Bit configuration (paper default ``ReFloat(7,3,3)(3,8)``).

    Attributes
    ----------
    A : csr_matrix
        The quantised matrix ``~A`` (what the crossbars hold).
    exact : csr_matrix
        The original FP64 matrix.
    blocked : BlockedMatrix
        Block partition with per-block exponent bases.
    """

    def __init__(self, A, spec: ReFloatSpec = DEFAULT_SPEC):
        self.spec = spec
        self.blocked = BlockedMatrix(A, b=spec.b)
        self.exact = self.blocked.A
        self.A = self.blocked.quantize(spec)
        self.shape = self.A.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Quantise the vector segment-wise, multiply by the quantised matrix."""
        xq, _ = quantize_vector(np.asarray(x, dtype=np.float64), self.spec)
        return self.A @ xq

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        """The vector the crossbars actually see (for diagnostics)."""
        xq, _ = quantize_vector(np.asarray(x, dtype=np.float64), self.spec)
        return xq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReFloatOperator({self.spec}, shape={self.shape})"
