"""The ReFloat SpMV operator (Eq. 9 as a functional platform model).

The matrix is block-partitioned and quantised **once** (matrix values never
change during the solve); the input vector is quantised **per apply** through
the vector converter (Fig. 6d) — exactly the accelerator's dataflow.  The
arithmetic equivalence is Eq. 9: per-block fixed-point MVMs scaled by
``2^(eb + ebv)`` reproduce the FP64 product of the *quantised* values, so the
functional model is ``y = ~A @ ~x`` computed in FP64 (the engine's output and
accumulation precision).  Bit-exactness of this shortcut against the
crossbar-level datapath is verified in :mod:`repro.hardware.engine` tests.

Hot path: ``matvec`` converts through a cached
:class:`repro.formats.refloat.VectorConverterPlan`, so a solver iteration
re-derives no segment structure and allocates nothing for the conversion
(the plan's per-thread scratch buffers are reused).  Callers that already
partitioned the matrix pass it via ``blocked=`` to skip the second partition
the constructor would otherwise redo.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.formats.refloat import (
    DEFAULT_SPEC,
    ReFloatSpec,
    vector_converter_plan,
)
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.mmio import csr_from_arrays

__all__ = ["ReFloatOperator"]


class ReFloatOperator:
    """SpMV in ``ReFloat(b, e, f)(ev, fv)``.

    Parameters
    ----------
    A : sparse matrix
        The FP64 system matrix.  May be ``None`` when ``blocked`` is given.
    spec : ReFloatSpec
        Bit configuration (paper default ``ReFloat(7,3,3)(3,8)``).
    blocked : BlockedMatrix, optional
        A prebuilt block partition of ``A`` (must use ``b == spec.b``).
        Passing it avoids re-partitioning the same matrix — ``run_matrix``
        already holds one for its own accounting.
    quantized : ndarray, optional
        The pre-quantised matrix values, e.g. reloaded from the persistent
        asset store.  Either a 1-D ``(nnz,)`` array — exactly
        ``blocked.quantize(spec).data`` — or a 3-D BSR-layout tensor shaped
        like ``blocked.bsr.data`` (the store's native extra layout), which
        is gathered through the scatter map back to CSR order
        bit-identically.  Skips the quantisation pass; the caller vouches
        that the data matches ``(blocked, spec)`` (the store checksums it
        and keys it by spec).  Only valid together with ``blocked``.

    Attributes
    ----------
    A : csr_matrix
        The quantised matrix ``~A`` (what the crossbars hold).
    exact : csr_matrix
        The original FP64 matrix.
    blocked : BlockedMatrix
        Block partition with per-block exponent bases.
    """

    def __init__(self, A, spec: ReFloatSpec = DEFAULT_SPEC,
                 blocked: Optional[BlockedMatrix] = None,
                 quantized: Optional[np.ndarray] = None):
        self.spec = spec
        if blocked is None:
            if quantized is not None:
                raise ValueError("quantized= requires a blocked= partition")
            blocked = BlockedMatrix(A, b=spec.b)
        elif blocked.b != spec.b:
            raise ValueError(
                f"blocked partition uses b={blocked.b}, spec requires b={spec.b}"
            )
        self.blocked = blocked
        self.exact = self.blocked.A
        if quantized is not None:
            if quantized.ndim == 3:
                bsr = self.blocked.bsr
                if quantized.shape != bsr.data.shape:
                    raise ValueError(
                        f"quantized BSR tensor has shape {quantized.shape}, "
                        f"layout expects {bsr.data.shape}")
                quantized = np.ascontiguousarray(
                    quantized, dtype=np.float64).reshape(-1)[bsr.scatter]
            elif quantized.shape != self.exact.data.shape:
                raise ValueError(
                    f"quantized data has {quantized.shape[0]} values, "
                    f"matrix has {self.exact.nnz} nonzeros")
            self.A = csr_from_arrays(quantized, self.exact.indices,
                                     self.exact.indptr, self.exact.shape,
                                     canonical=True)
        else:
            self.A = self.blocked.quantize(spec)
        self.shape = self.A.shape
        self._plan = vector_converter_plan(self.shape[1], spec)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Quantise the vector segment-wise, multiply by the quantised matrix.

        The conversion runs through the cached plan's scratch buffers; only
        the SpMV output is a fresh array.
        """
        xq, _ = self._plan.convert(np.asarray(x, dtype=np.float64))
        return self.A @ xq

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched :meth:`matvec`: quantise and multiply ``k`` columns at once.

        One plan-backed batch conversion plus one sparse SpMM serve every
        right-hand side; column ``j`` is bit-identical to ``matvec(X[:, j])``
        (CSR accumulates each output element over the same index order in
        both kernels — asserted by the fast-path tests).
        """
        Xq, _ = self._plan.convert_batch(np.asarray(X, dtype=np.float64))
        return self.A @ Xq

    def quantize_input_batch(self, X: np.ndarray, reuse: bool = False) -> np.ndarray:
        """Batched :meth:`quantize_input` — ``(n, k)`` columns at once.

        ``reuse=True`` returns the plan's per-thread batch scratch buffer
        (overwritten by the next batch conversion of the same width on this
        thread) for hot-path wrapping operators.
        """
        Xq, _ = self._plan.convert_batch(np.asarray(X, dtype=np.float64),
                                         reuse=reuse)
        return Xq

    def quantize_input(self, x: np.ndarray, reuse: bool = False) -> np.ndarray:
        """The vector the crossbars actually see (for diagnostics).

        ``reuse=True`` returns the plan's per-thread scratch buffer —
        overwritten by the next conversion on this thread — for hot-path
        callers (e.g. wrapping operators) that consume it immediately.
        """
        xq, _ = self._plan.convert(np.asarray(x, dtype=np.float64), reuse=reuse)
        return xq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReFloatOperator({self.spec}, shape={self.shape})"
